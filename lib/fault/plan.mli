(** Deterministic, seeded fault-injection plans.

    A plan describes {e when} components of the disk system misbehave:
    whole-drive failures and repairs (either scripted at fixed simulated
    times or drawn from exponential MTTF / MTTR distributions, one
    independent stream per drive), transient media errors with a
    per-request probability, the retry / sector-remap policy applied to
    them, and the pacing of the online rebuild that follows a repair.

    The plan is pure data plus a deterministic event generator: the same
    config always yields the same event sequence, independent of
    anything the simulation does with the events.  [none] disables every
    mechanism; a simulation driven with [none] must behave exactly as if
    the fault subsystem did not exist. *)

type action =
  | Fail of int  (** the drive stops servicing new requests *)
  | Repair of int  (** the drive returns (empty) and rebuild may begin *)

type config = {
  seed : int;  (** seeds the fault streams; independent of the engine seed *)
  mttf_ms : float;
      (** mean time to failure per drive, exponential; [0.] disables
          random drive failures *)
  mttr_ms : float;  (** mean time to repair a failed drive, exponential *)
  script : (float * action) list;
      (** explicit (time, event) list; when non-empty it replaces the
          exponential stream entirely *)
  media_error_rate : float;
      (** probability that one physical chunk request suffers a
          transient media error; [0.] disables media faults *)
  retry_fail_prob : float;
      (** probability that one retry of an erred request fails again *)
  max_retries : int;
      (** bounded retries (one platter revolution each) before the
          sector is remapped to the spare region *)
  remap_penalty_ms : float;
      (** relocation penalty paid when a sector is remapped and on every
          later access that touches a remapped sector *)
  rebuild_chunk_bytes : int;
      (** bytes reconstructed per background rebuild I/O *)
  rebuild_rate_bytes_per_ms : float;
      (** pacing cap on rebuild traffic; [0.] rebuilds flat-out (each
          chunk issued as soon as the previous one completes) *)
}

val none : config
(** Everything disabled: no drive faults, no media errors.  Simulations
    configured with [none] are byte-identical to the pre-fault code. *)

val drive_faults : config -> bool
(** The plan produces drive fail / repair events. *)

val media_faults : config -> bool
(** The plan produces per-request media errors. *)

val enabled : config -> bool
(** [drive_faults || media_faults]. *)

val validate : config -> unit
(** Raises [Invalid_argument] with a one-line message on the first
    nonsensical field (negative rates, probabilities outside [0, 1],
    non-positive rebuild chunk, scripted events at negative times...). *)

type t
(** A stateful event generator for one array. *)

val create : config -> drives:int -> t
(** Validates the config and binds it to an array of [drives] drives
    (scripted events must name drives within range).  Exponential plans
    seed one independent stream per drive from [config.seed]. *)

val pop : t -> (float * action) option
(** The next fault event in time order, consuming it.  Scripted plans
    drain their list; exponential plans draw the drive's next event
    (failures and repairs alternate per drive) as each is consumed, so
    the stream never ends.  [None] once a scripted plan is exhausted or
    when drive faults are disabled. *)

val ckpt_save : t -> string
(** Opaque snapshot of the generator's cursor (remaining script,
    per-drive RNG streams, upcoming per-drive events). *)

val ckpt_load : t -> string -> unit
(** Restore a snapshot taken by {!ckpt_save} into [t], in place.  [t]
    must have been built from the same config and drive count. *)

val pp_action : Format.formatter -> action -> unit

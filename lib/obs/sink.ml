type drive_stats = {
  seek_dist : Hist.t;
  mutable qd_sum : int;
  mutable qd_n : int;
  mutable qd_max : int;
}

let fresh_drive () = { seek_dist = Hist.create (); qd_sum = 0; qd_n = 0; qd_max = 0 }

type cache_totals = {
  ct_lookups : int;
  ct_hits : int;
  ct_misses : int;
  ct_evictions : int;
  ct_prefetched : int;
  ct_flushes : int;
  ct_flushed_bytes : int;
}

type t = {
  latency : Hist.t;
  queue_wait : Hist.t;
  seek : Hist.t;
  rotation : Hist.t;
  transfer : Hist.t;
  fault_penalty : Hist.t;
  mutable drives : drive_stats array;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable cache_prefetched : int;
  mutable cache_flushes : int;
  mutable cache_flushed_bytes : int;
  trace : Trace.t option;
}

let create ?(trace = false) ?trace_capacity () =
  {
    latency = Hist.create ();
    queue_wait = Hist.create ();
    seek = Hist.create ();
    rotation = Hist.create ();
    transfer = Hist.create ();
    fault_penalty = Hist.create ();
    drives = [||];
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    cache_prefetched = 0;
    cache_flushes = 0;
    cache_flushed_bytes = 0;
    trace = (if trace then Some (Trace.create ?capacity:trace_capacity ()) else None);
  }

let record_op t ~latency ~queue_wait ~seek ~rotation ~transfer =
  Hist.add t.latency latency;
  Hist.add t.queue_wait queue_wait;
  Hist.add t.seek seek;
  Hist.add t.rotation rotation;
  Hist.add t.transfer transfer

let record_fault_penalty t ms = Hist.add t.fault_penalty ms

let record_cache_op t ~hits ~misses ~evictions ~prefetched =
  t.cache_hits <- t.cache_hits + hits;
  t.cache_misses <- t.cache_misses + misses;
  t.cache_evictions <- t.cache_evictions + evictions;
  t.cache_prefetched <- t.cache_prefetched + prefetched

let record_cache_flush t ~bytes =
  t.cache_flushes <- t.cache_flushes + 1;
  t.cache_flushed_bytes <- t.cache_flushed_bytes + bytes

let cache_totals t =
  {
    ct_lookups = t.cache_hits + t.cache_misses;
    ct_hits = t.cache_hits;
    ct_misses = t.cache_misses;
    ct_evictions = t.cache_evictions;
    ct_prefetched = t.cache_prefetched;
    ct_flushes = t.cache_flushes;
    ct_flushed_bytes = t.cache_flushed_bytes;
  }

let drive t d =
  let len = Array.length t.drives in
  if d >= len then begin
    let grown = Array.make (d + 1) (fresh_drive ()) in
    Array.blit t.drives 0 grown 0 len;
    for i = len to d do
      grown.(i) <- fresh_drive ()
    done;
    t.drives <- grown
  end;
  t.drives.(d)

let record_seek t ~drive:d ~cylinders =
  if d >= 0 then Hist.add (drive t d).seek_dist (float_of_int cylinders)

let record_queue_depth t ~drive:d ~depth =
  if d >= 0 then begin
    let ds = drive t d in
    ds.qd_sum <- ds.qd_sum + depth;
    ds.qd_n <- ds.qd_n + 1;
    if depth > ds.qd_max then ds.qd_max <- depth
  end

let tracing t = t.trace <> None
let event t e = match t.trace with None -> () | Some ring -> Trace.record ring e

let latency t = t.latency
let queue_wait t = t.queue_wait
let seek t = t.seek
let rotation t = t.rotation
let transfer t = t.transfer
let fault_penalty t = t.fault_penalty
let drive_count t = Array.length t.drives

let drive_seek_dist t d =
  if d >= 0 && d < Array.length t.drives then t.drives.(d).seek_dist else Hist.create ()

let drive_queue_depth t d =
  if d >= 0 && d < Array.length t.drives && t.drives.(d).qd_n > 0 then begin
    let ds = t.drives.(d) in
    (float_of_int ds.qd_sum /. float_of_int ds.qd_n, ds.qd_max)
  end
  else (0., 0)

let trace_ref t = t.trace

(* Checkpoint.  The engine's recorder closures and reporters alias the
   six histograms and the trace ring, so those restore in place; the
   drives array is only reached through [t] and swaps wholesale. *)
let ckpt_save t =
  Marshal.to_string
    ( t.latency,
      t.queue_wait,
      t.seek,
      t.rotation,
      t.transfer,
      t.fault_penalty,
      t.drives,
      ( t.cache_hits,
        t.cache_misses,
        t.cache_evictions,
        t.cache_prefetched,
        t.cache_flushes,
        t.cache_flushed_bytes ),
      t.trace )
    []

let ckpt_load t blob =
  let ( latency,
        queue_wait,
        seek,
        rotation,
        transfer,
        fault_penalty,
        drives,
        (cache_hits, cache_misses, cache_evictions, cache_prefetched, cache_flushes, cache_flushed_bytes),
        trace ) =
    (Marshal.from_string blob 0
      : Hist.t
        * Hist.t
        * Hist.t
        * Hist.t
        * Hist.t
        * Hist.t
        * drive_stats array
        * (int * int * int * int * int * int)
        * Trace.t option)
  in
  Hist.ckpt_restore ~dst:t.latency ~src:latency;
  Hist.ckpt_restore ~dst:t.queue_wait ~src:queue_wait;
  Hist.ckpt_restore ~dst:t.seek ~src:seek;
  Hist.ckpt_restore ~dst:t.rotation ~src:rotation;
  Hist.ckpt_restore ~dst:t.transfer ~src:transfer;
  Hist.ckpt_restore ~dst:t.fault_penalty ~src:fault_penalty;
  t.drives <- drives;
  t.cache_hits <- cache_hits;
  t.cache_misses <- cache_misses;
  t.cache_evictions <- cache_evictions;
  t.cache_prefetched <- cache_prefetched;
  t.cache_flushes <- cache_flushes;
  t.cache_flushed_bytes <- cache_flushed_bytes;
  match (t.trace, trace) with
  | None, None -> ()
  | Some dst, Some src -> Trace.ckpt_restore ~dst ~src
  | Some _, None | None, Some _ ->
      invalid_arg "Sink.ckpt_load: trace configuration mismatch"

let merge a b =
  let drives =
    let n = max (Array.length a.drives) (Array.length b.drives) in
    Array.init n (fun i ->
        let pick arr = if i < Array.length arr then Some arr.(i) else None in
        match (pick a.drives, pick b.drives) with
        | Some x, Some y ->
            {
              seek_dist = Hist.merge x.seek_dist y.seek_dist;
              qd_sum = x.qd_sum + y.qd_sum;
              qd_n = x.qd_n + y.qd_n;
              qd_max = max x.qd_max y.qd_max;
            }
        | Some x, None | None, Some x ->
            {
              seek_dist = Hist.copy x.seek_dist;
              qd_sum = x.qd_sum;
              qd_n = x.qd_n;
              qd_max = x.qd_max;
            }
        | None, None -> fresh_drive ())
  in
  let trace =
    match (a.trace, b.trace) with
    | None, None -> None
    | ta, tb ->
        let capacity =
          let cap = function None -> 0 | Some ring -> max (Trace.length ring) 1 in
          max Trace.(default_capacity) (max (cap ta) (cap tb))
        in
        let merged = Trace.create ~capacity () in
        Option.iter (fun ring -> Trace.merge_into merged ring) ta;
        Option.iter (fun ring -> Trace.merge_into merged ring) tb;
        Some merged
  in
  {
    latency = Hist.merge a.latency b.latency;
    queue_wait = Hist.merge a.queue_wait b.queue_wait;
    seek = Hist.merge a.seek b.seek;
    rotation = Hist.merge a.rotation b.rotation;
    transfer = Hist.merge a.transfer b.transfer;
    fault_penalty = Hist.merge a.fault_penalty b.fault_penalty;
    drives;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    cache_evictions = a.cache_evictions + b.cache_evictions;
    cache_prefetched = a.cache_prefetched + b.cache_prefetched;
    cache_flushes = a.cache_flushes + b.cache_flushes;
    cache_flushed_bytes = a.cache_flushed_bytes + b.cache_flushed_bytes;
    trace;
  }

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int (Hist.count h));
      ("mean", Json.Float (Hist.mean h));
      ("min", Json.Float (Option.value ~default:0. (Hist.min_value h)));
      ("max", Json.Float (Option.value ~default:0. (Hist.max_value h)));
      ("p50", Json.Float (Hist.p50 h));
      ("p90", Json.Float (Hist.p90 h));
      ("p99", Json.Float (Hist.p99 h));
      ("p999", Json.Float (Hist.p999 h));
    ]

let to_json t =
  let drives =
    Array.to_list
      (Array.mapi
         (fun i ds ->
           let mean_qd, max_qd = drive_queue_depth t i in
           Json.Obj
             [
               ("drive", Json.Int i);
               ("seek_dist_cylinders", hist_json ds.seek_dist);
               ("queue_depth_mean", Json.Float mean_qd);
               ("queue_depth_max", Json.Int max_qd);
             ])
         t.drives)
  in
  (* The cache member only appears when a cache was active: the
     metrics document of an uncached run keeps its frozen key set. *)
  let cache =
    if t.cache_hits + t.cache_misses + t.cache_flushes = 0 then []
    else begin
      let c = cache_totals t in
      [
        ( "cache",
          Json.Obj
            [
              ("lookups", Json.Int c.ct_lookups);
              ("hits", Json.Int c.ct_hits);
              ("misses", Json.Int c.ct_misses);
              ( "hit_rate",
                Json.Float
                  (if c.ct_lookups > 0 then
                     float_of_int c.ct_hits /. float_of_int c.ct_lookups
                   else 0.) );
              ("evictions", Json.Int c.ct_evictions);
              ("prefetched_pages", Json.Int c.ct_prefetched);
              ("flushes", Json.Int c.ct_flushes);
              ("flushed_bytes", Json.Int c.ct_flushed_bytes);
            ] );
      ]
    end
  in
  (* Likewise the trace member: only traced runs carry it, so the
     frozen key set of untraced metrics documents is unchanged. *)
  let trace =
    match t.trace with
    | None -> []
    | Some ring ->
        [
          ( "trace",
            Json.Obj
              [
                ("events", Json.Int (Trace.length ring));
                ("dropped", Json.Int (Trace.dropped ring));
              ] );
        ]
  in
  Json.Obj
    ([
       ("latency_ms", hist_json t.latency);
       ("queue_wait_ms", hist_json t.queue_wait);
       ("seek_ms", hist_json t.seek);
       ("rotation_ms", hist_json t.rotation);
       ("transfer_ms", hist_json t.transfer);
       ("fault_penalty_ms", hist_json t.fault_penalty);
       ("drives", Json.Arr drives);
     ]
    @ cache @ trace)

(* Fixed-boundary log-bucketed histogram (see hist.mli for the scheme).
   Values are floats scaled by 1000 and truncated to int ("milli-units");
   bucket [i] of octave [e] covers a [2^e]-wide slice, 32 slices per
   octave, so boundaries depend only on the index — the precondition for
   partition-invariant merging. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 linear sub-buckets per octave *)

(* Position of the highest set bit; [msb 1 = 0]. *)
let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of v =
  if v < 0 then invalid_arg "Hist.index_of: negative value";
  if v < sub_count then v
  else begin
    let exp = msb v - sub_bits in
    (exp * sub_count) + (v lsr exp)
  end

let bucket_count = index_of max_int + 1

let bucket_lower i =
  if i < 0 || i >= bucket_count then invalid_arg "Hist.bucket_lower: index out of range";
  if i < 2 * sub_count then i
  else begin
    let exp = (i / sub_count) - 1 in
    (i - (exp * sub_count)) lsl exp
  end

(* Exclusive upper bound: the next bucket's lower bound. *)
let bucket_upper i = if i + 1 >= bucket_count then max_int else bucket_lower (i + 1)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable minimum : float; (* exact; meaningless when n = 0 *)
  mutable maximum : float;
}

let create () =
  { counts = Array.make bucket_count 0; n = 0; sum = 0.; minimum = 0.; maximum = 0. }

let scale = 1000.

let add t x =
  let x = if Float.is_nan x || x < 0. then 0. else x in
  let v =
    let scaled = x *. scale in
    if scaled >= float_of_int max_int then max_int else int_of_float scaled
  in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sum <- t.sum +. x;
  if t.n = 0 then begin
    t.minimum <- x;
    t.maximum <- x
  end
  else begin
    if x < t.minimum then t.minimum <- x;
    if x > t.maximum then t.maximum <- x
  end;
  t.n <- t.n + 1

(* Bulk add: [k] identical samples in one bucket update.  Used by the
   timeline's free-extent snapshots, where the allocator reports
   (size, count) pairs and adding one-by-one would be O(total extents). *)
let add_n t x k =
  if k < 0 then invalid_arg "Hist.add_n: negative count";
  if k > 0 then begin
    let x = if Float.is_nan x || x < 0. then 0. else x in
    let v =
      let scaled = x *. scale in
      if scaled >= float_of_int max_int then max_int else int_of_float scaled
    in
    let i = index_of v in
    t.counts.(i) <- t.counts.(i) + k;
    t.sum <- t.sum +. (x *. float_of_int k);
    if t.n = 0 then begin
      t.minimum <- x;
      t.maximum <- x
    end
    else begin
      if x < t.minimum then t.minimum <- x;
      if x > t.maximum then t.maximum <- x
    end;
    t.n <- t.n + k
  end

let count t = t.n
let is_empty t = t.n = 0
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then None else Some t.minimum
let max_value t = if t.n = 0 then None else Some t.maximum

let quantile t q =
  if t.n = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (min t.n (int_of_float (Float.ceil (q *. float_of_int t.n)))) in
    let rec walk i cum =
      let cum = cum + t.counts.(i) in
      if cum >= rank then float_of_int (bucket_lower i) /. scale else walk (i + 1) cum
    in
    walk 0 0
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let copy t =
  {
    counts = Array.copy t.counts;
    n = t.n;
    sum = t.sum;
    minimum = t.minimum;
    maximum = t.maximum;
  }

let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let counts = Array.copy a.counts in
    Array.iteri (fun i c -> if c <> 0 then counts.(i) <- counts.(i) + c) b.counts;
    {
      counts;
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      minimum = Float.min a.minimum b.minimum;
      maximum = Float.max a.maximum b.maximum;
    }
  end

(* Checkpoint restore: reporters may alias [t], so restore in place. *)
let ckpt_restore ~dst ~src =
  Array.blit src.counts 0 dst.counts 0 (Array.length dst.counts);
  dst.n <- src.n;
  dst.sum <- src.sum;
  dst.minimum <- src.minimum;
  dst.maximum <- src.maximum

let buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.counts.(i) <> 0 then
      acc :=
        ( float_of_int (bucket_lower i) /. scale,
          float_of_int (bucket_upper i) /. scale,
          t.counts.(i) )
        :: !acc
  done;
  !acc

(** Aggregation point for instrumentation.

    A sink bundles the latency histograms, per-drive counters and the
    (optional) event trace for one simulation run.  The simulator holds
    [Sink.t option]; with [None] attached the instrumented code paths
    do no recording and no allocation — observability is strictly
    pay-for-what-you-use, and attaching a sink never changes simulated
    results (the goldens pin this).

    Sinks merge ({!merge}): all histograms combine bucket-wise and the
    per-drive counters add, so per-seed sinks from a parallel sweep can
    be folded in fixed seed order into totals that are bit-identical at
    every [--jobs] count. *)

type t

val create : ?trace:bool -> ?trace_capacity:int -> unit -> t
(** [trace] defaults to [false]: no ring is allocated and {!event} is a
    no-op.  [trace_capacity] bounds the ring (default 65536). *)

(** {1 Recording} *)

val record_op :
  t ->
  latency:float ->
  queue_wait:float ->
  seek:float ->
  rotation:float ->
  transfer:float ->
  unit
(** One completed logical operation with its service-time breakdown
    (all in simulated ms).  The breakdown components go to their own
    histograms; [latency] is end-to-end (includes queueing and any
    fault-retry penalty). *)

val record_fault_penalty : t -> float -> unit
(** Extra service time charged by a transient media fault (ms). *)

val record_cache_op : t -> hits:int -> misses:int -> evictions:int -> prefetched:int -> unit
(** One buffer-cache access: pages found resident / faulted in, frames
    recycled, and pages staged ahead of the access. *)

val record_cache_flush : t -> bytes:int -> unit
(** One periodic dirty-page flush that pushed [bytes] out. *)

val record_seek : t -> drive:int -> cylinders:int -> unit
(** Seek distance of one repositioning, in cylinders. *)

val record_queue_depth : t -> drive:int -> depth:int -> unit
(** Sample of a drive's queue depth, taken at chunk submission. *)

val tracing : t -> bool
(** [true] iff an event ring is attached — callers use this to skip
    building {!Trace.event} records entirely when tracing is off. *)

val event : t -> Trace.event -> unit
(** Record a trace event; no-op when [tracing t = false]. *)

(** {1 Reading} *)

val latency : t -> Hist.t
val queue_wait : t -> Hist.t
val seek : t -> Hist.t
val rotation : t -> Hist.t
val transfer : t -> Hist.t
val fault_penalty : t -> Hist.t

val drive_count : t -> int
(** Highest instrumented drive index + 1. *)

val drive_seek_dist : t -> int -> Hist.t
(** Seek-distance histogram of one drive (empty hist if never seen). *)

val drive_queue_depth : t -> int -> float * int
(** [(mean, max)] sampled queue depth of one drive; [(0., 0)] if never
    sampled. *)

type cache_totals = {
  ct_lookups : int;  (** [ct_hits + ct_misses] *)
  ct_hits : int;
  ct_misses : int;
  ct_evictions : int;
  ct_prefetched : int;
  ct_flushes : int;
  ct_flushed_bytes : int;
}

val cache_totals : t -> cache_totals
(** Buffer-cache counters; all zero when no cache was active. *)

val trace_ref : t -> Trace.t option

val merge : t -> t -> t
(** Fresh sink combining both; neither argument is mutated.  Traces
    merge when present on either side (capacity = max of the two). *)

val ckpt_save : t -> string
(** Opaque snapshot of every histogram, per-drive counter, cache
    counter and the trace ring, for checkpoint/restore. *)

val ckpt_load : t -> string -> unit
(** Restore a {!ckpt_save} snapshot into [t], in place (aliases to the
    histograms and trace ring stay valid).  Raises [Invalid_argument]
    when tracing configuration differs from the snapshot's. *)

(** {1 Serialization} *)

val hist_json : Hist.t -> Json.t
(** Summary object: [count], [mean], [min], [max], [p50/p90/p99/p999]. *)

val to_json : t -> Json.t
(** Full metrics document: the six histograms plus a [drives] array;
    only when cache counters were recorded, a [cache] object with
    hit/miss/eviction counts and the hit rate; only when an event ring
    is attached, a [trace] object with held-event and dropped-event
    counts (so a truncated trace is visibly truncated). *)

(** Bounded event-trace sink.

    A ring buffer of typed simulation events (request arrival, chunk
    dispatch, completion, fault activity, rebuild progress).  When the
    ring is full the oldest events are dropped — tracing a long run
    keeps the tail, which is usually the interesting part, and memory
    stays bounded no matter how long the simulation runs.

    Two serializations:
    - {!to_jsonl}: one JSON object per line, in timestamp order —
      greppable, streams well.
    - {!chrome_json}: Chrome trace-event format ([{"traceEvents":[…]}])
      loadable in Perfetto / [chrome://tracing].  Chunk-level events
      with a duration become ["ph":"X"] complete events on one track
      per drive; operation-level and instantaneous events land on a
      dedicated track. *)

type kind =
  | Arrival  (** a logical operation entered the system *)
  | Dispatch  (** a chunk was picked by the scheduler and started service *)
  | Completion  (** a chunk (drive >= 0) or whole op (drive = -1) finished *)
  | Fault_fail  (** a drive was marked failed *)
  | Fault_repair  (** a drive came back / rebuild finished *)
  | Rebuild  (** one rebuild chunk was copied *)
  | Media  (** a transient media error cost a retry *)
  | Cache_hit  (** bytes served (or a write absorbed) from the buffer cache *)
  | Cache_miss  (** a cache fetch was issued for missing pages *)
  | Cache_evict  (** dirty pages were written back to free frames *)
  | Cache_flush  (** the periodic flush pushed dirty pages out *)

val kind_name : kind -> string

type event = {
  at_ms : float;  (** simulated time the event (or its service) started *)
  dur_ms : float;  (** service duration; [0.] for instantaneous events *)
  kind : kind;
  drive : int;  (** drive index, or [-1] when not drive-specific *)
  op_id : int;  (** originating operation, or [-1] *)
  bytes : int;  (** payload size, or [0] *)
}

type t

val default_capacity : int
(** 65536 events. *)

val create : ?capacity:int -> unit -> t
(** Default capacity {!default_capacity}.  [capacity] clamps to [>= 1]. *)

val record : t -> event -> unit

val length : t -> int
(** Events currently held (<= capacity). *)

val dropped : t -> int
(** Events evicted because the ring was full. *)

val events : t -> event list
(** Held events sorted by [at_ms] (ties keep insertion order). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] records all of [src]'s events into [dst] and
    adds [src]'s dropped count to [dst]'s, so the merged trace reports
    the union's true truncation. *)

val ckpt_restore : dst:t -> src:t -> unit
(** Overwrite [dst]'s ring and cursors with [src]'s, in place.  Raises
    [Invalid_argument] on a capacity mismatch. *)

val to_jsonl : t -> string
(** One compact JSON object per event, one per line, timestamp order,
    terminated by a summary footer line
    [{"trace_footer":true,"events":N,"dropped":D}] so a truncated trace
    is visibly truncated. *)

val chrome_json : t -> Json.t
(** The trace as a Chrome trace-event document, with a top-level
    ["dropped"] member counting ring-evicted events. *)

type kind =
  | Arrival
  | Dispatch
  | Completion
  | Fault_fail
  | Fault_repair
  | Rebuild
  | Media
  | Cache_hit
  | Cache_miss
  | Cache_evict
  | Cache_flush

let kind_name = function
  | Arrival -> "arrival"
  | Dispatch -> "dispatch"
  | Completion -> "completion"
  | Fault_fail -> "fault_fail"
  | Fault_repair -> "fault_repair"
  | Rebuild -> "rebuild"
  | Media -> "media"
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Cache_evict -> "cache_evict"
  | Cache_flush -> "cache_flush"

type event = {
  at_ms : float;
  dur_ms : float;
  kind : kind;
  drive : int;
  op_id : int;
  bytes : int;
}

type t = {
  ring : event option array;
  capacity : int;
  mutable next : int; (* slot for the next write *)
  mutable stored : int;
  mutable dropped : int;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  { ring = Array.make capacity None; capacity; next = 0; stored = 0; dropped = 0 }

let record t e =
  if t.stored = t.capacity then t.dropped <- t.dropped + 1 else t.stored <- t.stored + 1;
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod t.capacity

let length t = t.stored
let dropped t = t.dropped

(* Checkpoint restore in place (the engine's recorder closures alias
   the ring).  Capacities must match — same trace config on resume. *)
let ckpt_restore ~dst ~src =
  if dst.capacity <> src.capacity then
    invalid_arg "Trace.ckpt_restore: capacity mismatch";
  Array.blit src.ring 0 dst.ring 0 dst.capacity;
  dst.next <- src.next;
  dst.stored <- src.stored;
  dst.dropped <- src.dropped

let events t =
  (* Oldest-first read of the ring, then a stable sort by timestamp so
     serialized traces are non-decreasing in time even when events were
     recorded out of order (e.g. completion bookkeeping). *)
  let out = ref [] in
  let start = (t.next - t.stored + t.capacity) mod t.capacity in
  for i = t.stored - 1 downto 0 do
    match t.ring.((start + i) mod t.capacity) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.stable_sort (fun a b -> Float.compare a.at_ms b.at_ms) !out

(* Events [src] already dropped stay dropped: carry the count across so
   a merged trace reports the union's true truncation, not just what
   overflowed [dst]'s ring during the merge itself. *)
let merge_into dst src =
  List.iter (record dst) (events src);
  dst.dropped <- dst.dropped + src.dropped

let event_json e =
  Json.Obj
    [
      ("at_ms", Json.Float e.at_ms);
      ("dur_ms", Json.Float e.dur_ms);
      ("kind", Json.Str (kind_name e.kind));
      ("drive", Json.Int e.drive);
      ("op", Json.Int e.op_id);
      ("bytes", Json.Int e.bytes);
    ]

let to_jsonl t =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buffer (Json.to_string (event_json e));
      Buffer.add_char buffer '\n')
    (events t);
  (* Footer: a summary line so a truncated trace is visibly truncated.
     Distinguished from event lines by its "trace_footer" key. *)
  Buffer.add_string buffer
    (Json.to_string
       (Json.Obj
          [
            ("trace_footer", Json.Bool true);
            ("events", Json.Int t.stored);
            ("dropped", Json.Int t.dropped);
          ]));
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

(* Chrome trace-event format.  Timestamps are microseconds; the
   simulation clock is milliseconds, so scale by 1000.  Drive-level
   events get tid = drive index; operation-level / global events get a
   dedicated track. *)

let op_track_tid = 1000

let chrome_json t =
  let us ms = ms *. 1000. in
  let evs = events t in
  let max_drive = List.fold_left (fun acc e -> max acc e.drive) (-1) evs in
  let meta =
    let thread tid name =
      Json.Obj
        [
          ("name", Json.Str "thread_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int tid);
          ("args", Json.Obj [ ("name", Json.Str name) ]);
        ]
    in
    let drives = List.init (max_drive + 1) (fun d -> thread d (Printf.sprintf "drive %d" d)) in
    drives @ [ thread op_track_tid "operations" ]
  in
  let body =
    List.map
      (fun e ->
        let tid = if e.drive >= 0 then e.drive else op_track_tid in
        let args =
          Json.Obj [ ("op", Json.Int e.op_id); ("bytes", Json.Int e.bytes) ]
        in
        if e.dur_ms > 0. then
          Json.Obj
            [
              ("name", Json.Str (kind_name e.kind));
              ("ph", Json.Str "X");
              ("ts", Json.Float (us e.at_ms));
              ("dur", Json.Float (us e.dur_ms));
              ("pid", Json.Int 1);
              ("tid", Json.Int tid);
              ("args", args);
            ]
        else
          Json.Obj
            [
              ("name", Json.Str (kind_name e.kind));
              ("ph", Json.Str "i");
              ("ts", Json.Float (us e.at_ms));
              ("s", Json.Str "t");
              ("pid", Json.Int 1);
              ("tid", Json.Int tid);
              ("args", args);
            ])
      evs
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (meta @ body));
      ("displayTimeUnit", Json.Str "ms");
      ("dropped", Json.Int t.dropped);
    ]

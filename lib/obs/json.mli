(** Minimal JSON document: build, print, parse.

    Enough JSON for the observability layer to emit machine-readable
    summaries, metrics and traces, and for tests / CI to validate them
    back, without adding a dependency the container may not have.
    Printing is deterministic: object keys keep insertion order, floats
    render with ["%.12g"] (non-finite floats render as [null], since
    JSON has no spelling for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Strict-enough recursive-descent parser for everything {!to_string}
    emits (and ordinary hand-written JSON): the error string carries a
    character offset.  Numbers without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing key or non-object. *)

val keys : t -> string list
(** Object keys in order; [[]] for non-objects. *)

val float_value : t -> float option
(** The number as a float, accepting both [Int] and [Float]. *)

(* Windowed time-series telemetry (see timeline.mli for the model).

   Windows are aligned to absolute simulated time: window [k] covers
   [k * every_ms, (k+1) * every_ms).  The engine feeds two streams:
   per-completion latencies (attributed to the window containing the
   completion timestamp, which the synchronous fast path can place
   beyond the currently open window) and one cumulative [sample] per
   tick, from which the closing window's counter deltas are taken.
   Everything is integer counters, per-window histograms or documented
   gauge rules, so merging slice timelines elementwise is exact. *)

type sample = {
  s_io_ops : int;
  s_alloc_ops : int;
  s_bytes_moved : int;
  s_disk_fulls : int;
  s_data_loss : int;
  s_rebuild_ios : int;
  s_cache_lookups : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_cache_writeback_bytes : int;
  s_cache_prefetched : int;
  s_drive_busy_ms : float array;
  s_queue_depths : int array;
  s_failed_drives : int;
  s_rebuilding_drives : int;
  s_used_units : int;
  s_total_units : int;
  s_free_units : int;
  s_largest_free : int;
  s_free_hist : (int * int) list;
  s_user_units : int;
  s_moved_units : int;
  s_cleaner_passes : int;
}

let free_extents_of pairs = List.fold_left (fun acc (_, c) -> acc + c) 0 pairs

type window = {
  w_index : int;
  w_io_ops : int;
  w_alloc_ops : int;
  w_bytes : int;
  w_disk_fulls : int;
  w_data_loss : int;
  w_rebuild_ios : int;
  w_cache_lookups : int;
  w_cache_hits : int;
  w_cache_misses : int;
  w_cache_writeback_bytes : int;
  w_cache_prefetched : int;
  w_latency : Hist.t;
  w_drive_busy_ms : float array;
  w_queue_depths : int array;
  w_failed_drives : int;
  w_rebuilding_drives : int;
  w_used_units : int;
  w_total_units : int;
  w_free_units : int;
  w_largest_free : int;
  w_free_extents : int;
  w_free_sizes : Hist.t;
  w_user_units : int;  (** units appended for user growth this window *)
  w_moved_units : int;  (** units the allocator relocated this window *)
  w_cleaner_passes : int;  (** cleaner passes this window *)
  w_user_units_total : int;  (** cumulative user units at window close *)
  w_moved_units_total : int;  (** cumulative moved units at window close *)
}

type t = {
  every_ms : float;
  mutable closed_rev : window list;
  mutable nclosed : int;
  mutable lat : Hist.t array;  (* per-window latency, indexed by window *)
  mutable prev : sample;  (* cumulative baseline of the open window *)
}

let create ~every_ms ~baseline =
  if every_ms <= 0. then invalid_arg "Timeline.create: every_ms must be positive";
  { every_ms; closed_rev = []; nclosed = 0; lat = [||]; prev = baseline }

let every_ms t = t.every_ms
let window_count t = t.nclosed

let lat_hist t idx =
  let len = Array.length t.lat in
  if idx >= len then begin
    let grown = Array.init (max (idx + 1) (max 8 (2 * len))) (fun _ -> Hist.create ()) in
    Array.blit t.lat 0 grown 0 len;
    t.lat <- grown
  end;
  t.lat.(idx)

let record_latency t ~at v =
  (* The synchronous fast path records an operation when it is issued,
     with a completion time possibly several windows ahead — attribute
     by the completion timestamp, not the call time.  [max nclosed]
     guards the (never expected) case of a timestamp behind the open
     window; a closed window cannot be amended. *)
  let idx = max t.nclosed (int_of_float (at /. t.every_ms)) in
  Hist.add (lat_hist t idx) v

let free_sizes_hist pairs =
  let h = Hist.create () in
  List.iter (fun (size, count) -> Hist.add_n h (float_of_int size) count) pairs;
  h

let tick t sample =
  let idx = t.nclosed in
  let p = t.prev in
  let busy =
    Array.init (Array.length sample.s_drive_busy_ms) (fun d ->
        sample.s_drive_busy_ms.(d)
        -. (if d < Array.length p.s_drive_busy_ms then p.s_drive_busy_ms.(d) else 0.))
  in
  let w =
    {
      w_index = idx;
      w_io_ops = sample.s_io_ops - p.s_io_ops;
      w_alloc_ops = sample.s_alloc_ops - p.s_alloc_ops;
      w_bytes = sample.s_bytes_moved - p.s_bytes_moved;
      w_disk_fulls = sample.s_disk_fulls - p.s_disk_fulls;
      w_data_loss = sample.s_data_loss - p.s_data_loss;
      w_rebuild_ios = sample.s_rebuild_ios - p.s_rebuild_ios;
      w_cache_lookups = sample.s_cache_lookups - p.s_cache_lookups;
      w_cache_hits = sample.s_cache_hits - p.s_cache_hits;
      w_cache_misses = sample.s_cache_misses - p.s_cache_misses;
      w_cache_writeback_bytes = sample.s_cache_writeback_bytes - p.s_cache_writeback_bytes;
      w_cache_prefetched = sample.s_cache_prefetched - p.s_cache_prefetched;
      w_latency =
        (if idx < Array.length t.lat then t.lat.(idx) else Hist.create ());
      w_drive_busy_ms = busy;
      w_queue_depths = Array.copy sample.s_queue_depths;
      w_failed_drives = sample.s_failed_drives;
      w_rebuilding_drives = sample.s_rebuilding_drives;
      w_used_units = sample.s_used_units;
      w_total_units = sample.s_total_units;
      w_free_units = sample.s_free_units;
      w_largest_free = sample.s_largest_free;
      w_free_extents = free_extents_of sample.s_free_hist;
      w_free_sizes = free_sizes_hist sample.s_free_hist;
      w_user_units = sample.s_user_units - p.s_user_units;
      w_moved_units = sample.s_moved_units - p.s_moved_units;
      w_cleaner_passes = sample.s_cleaner_passes - p.s_cleaner_passes;
      w_user_units_total = sample.s_user_units;
      w_moved_units_total = sample.s_moved_units;
    }
  in
  t.closed_rev <- w :: t.closed_rev;
  t.nclosed <- idx + 1;
  t.prev <- sample

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)

(* Merge rules (the documented contract, pinned by the shard goldens):
   counters and byte deltas sum; latency and free-size histograms merge
   bucket-wise ([Hist.merge]); per-drive arrays concatenate in argument
   order (slice 0's drives first, matching the fault report's
   drive-state rule); used/total/free units and free-extent counts sum
   (the slices manage disjoint sub-volumes); [largest_free] takes the
   max; failed/rebuilding drive counts sum.  A timeline that closed
   fewer windows than its peer contributes, for each missing window,
   zero deltas, an empty latency histogram, and the gauge values of its
   final cumulative sample — a finished slice's free space no longer
   changes, so its last observation stands. *)

let combine_windows a b =
  {
    w_index = a.w_index;
    w_io_ops = a.w_io_ops + b.w_io_ops;
    w_alloc_ops = a.w_alloc_ops + b.w_alloc_ops;
    w_bytes = a.w_bytes + b.w_bytes;
    w_disk_fulls = a.w_disk_fulls + b.w_disk_fulls;
    w_data_loss = a.w_data_loss + b.w_data_loss;
    w_rebuild_ios = a.w_rebuild_ios + b.w_rebuild_ios;
    w_cache_lookups = a.w_cache_lookups + b.w_cache_lookups;
    w_cache_hits = a.w_cache_hits + b.w_cache_hits;
    w_cache_misses = a.w_cache_misses + b.w_cache_misses;
    w_cache_writeback_bytes = a.w_cache_writeback_bytes + b.w_cache_writeback_bytes;
    w_cache_prefetched = a.w_cache_prefetched + b.w_cache_prefetched;
    w_latency = Hist.merge a.w_latency b.w_latency;
    w_drive_busy_ms = Array.append a.w_drive_busy_ms b.w_drive_busy_ms;
    w_queue_depths = Array.append a.w_queue_depths b.w_queue_depths;
    w_failed_drives = a.w_failed_drives + b.w_failed_drives;
    w_rebuilding_drives = a.w_rebuilding_drives + b.w_rebuilding_drives;
    w_used_units = a.w_used_units + b.w_used_units;
    w_total_units = a.w_total_units + b.w_total_units;
    w_free_units = a.w_free_units + b.w_free_units;
    w_largest_free = max a.w_largest_free b.w_largest_free;
    w_free_extents = a.w_free_extents + b.w_free_extents;
    w_free_sizes = Hist.merge a.w_free_sizes b.w_free_sizes;
    w_user_units = a.w_user_units + b.w_user_units;
    w_moved_units = a.w_moved_units + b.w_moved_units;
    w_cleaner_passes = a.w_cleaner_passes + b.w_cleaner_passes;
    w_user_units_total = a.w_user_units_total + b.w_user_units_total;
    w_moved_units_total = a.w_moved_units_total + b.w_moved_units_total;
  }

(* The stand-in for a window a finished timeline never closed: gauges
   from its final sample, everything rate-like zero. *)
let tail_window t idx =
  let p = t.prev in
  {
    w_index = idx;
    w_io_ops = 0;
    w_alloc_ops = 0;
    w_bytes = 0;
    w_disk_fulls = 0;
    w_data_loss = 0;
    w_rebuild_ios = 0;
    w_cache_lookups = 0;
    w_cache_hits = 0;
    w_cache_misses = 0;
    w_cache_writeback_bytes = 0;
    w_cache_prefetched = 0;
    w_latency = Hist.create ();
    w_drive_busy_ms = Array.make (Array.length p.s_drive_busy_ms) 0.;
    w_queue_depths = Array.copy p.s_queue_depths;
    w_failed_drives = p.s_failed_drives;
    w_rebuilding_drives = p.s_rebuilding_drives;
    w_used_units = p.s_used_units;
    w_total_units = p.s_total_units;
    w_free_units = p.s_free_units;
    w_largest_free = p.s_largest_free;
    w_free_extents = free_extents_of p.s_free_hist;
    w_free_sizes = free_sizes_hist p.s_free_hist;
    w_user_units = 0;
    w_moved_units = 0;
    w_cleaner_passes = 0;
    w_user_units_total = p.s_user_units;
    w_moved_units_total = p.s_moved_units;
  }

(* Sum two sorted (size, count) free-space distributions. *)
let rec merge_free_hists a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (sa, ca) :: ta, (sb, _) :: _ when sa < sb -> (sa, ca) :: merge_free_hists ta b
  | (sa, _) :: _, (sb, cb) :: tb when sb < sa -> (sb, cb) :: merge_free_hists a tb
  | (sa, ca) :: ta, (_, cb) :: tb -> (sa, ca + cb) :: merge_free_hists ta tb

let combine_samples a b =
  {
    s_io_ops = a.s_io_ops + b.s_io_ops;
    s_alloc_ops = a.s_alloc_ops + b.s_alloc_ops;
    s_bytes_moved = a.s_bytes_moved + b.s_bytes_moved;
    s_disk_fulls = a.s_disk_fulls + b.s_disk_fulls;
    s_data_loss = a.s_data_loss + b.s_data_loss;
    s_rebuild_ios = a.s_rebuild_ios + b.s_rebuild_ios;
    s_cache_lookups = a.s_cache_lookups + b.s_cache_lookups;
    s_cache_hits = a.s_cache_hits + b.s_cache_hits;
    s_cache_misses = a.s_cache_misses + b.s_cache_misses;
    s_cache_writeback_bytes = a.s_cache_writeback_bytes + b.s_cache_writeback_bytes;
    s_cache_prefetched = a.s_cache_prefetched + b.s_cache_prefetched;
    s_drive_busy_ms = Array.append a.s_drive_busy_ms b.s_drive_busy_ms;
    s_queue_depths = Array.append a.s_queue_depths b.s_queue_depths;
    s_failed_drives = a.s_failed_drives + b.s_failed_drives;
    s_rebuilding_drives = a.s_rebuilding_drives + b.s_rebuilding_drives;
    s_used_units = a.s_used_units + b.s_used_units;
    s_total_units = a.s_total_units + b.s_total_units;
    s_free_units = a.s_free_units + b.s_free_units;
    s_largest_free = max a.s_largest_free b.s_largest_free;
    s_free_hist = merge_free_hists a.s_free_hist b.s_free_hist;
    s_user_units = a.s_user_units + b.s_user_units;
    s_moved_units = a.s_moved_units + b.s_moved_units;
    s_cleaner_passes = a.s_cleaner_passes + b.s_cleaner_passes;
  }

let merge a b =
  if a.every_ms <> b.every_ms then invalid_arg "Timeline.merge: window width mismatch";
  let wa = Array.of_list (List.rev a.closed_rev) in
  let wb = Array.of_list (List.rev b.closed_rev) in
  let n = max (Array.length wa) (Array.length wb) in
  let closed_rev = ref [] in
  for i = 0 to n - 1 do
    let x = if i < Array.length wa then wa.(i) else tail_window a i in
    let y = if i < Array.length wb then wb.(i) else tail_window b i in
    closed_rev := combine_windows x y :: !closed_rev
  done;
  {
    every_ms = a.every_ms;
    closed_rev = !closed_rev;
    nclosed = n;
    lat = [||];  (* a merged timeline is read-only: no open window *)
    prev = combine_samples a.prev b.prev;
  }

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)

let ckpt_save t =
  Marshal.to_string (t.every_ms, t.closed_rev, t.nclosed, t.lat, t.prev) []

let ckpt_load t blob =
  let every_ms, closed_rev, nclosed, lat, prev =
    (Marshal.from_string blob 0
      : float * window list * int * Hist.t array * sample)
  in
  if every_ms <> t.every_ms then
    invalid_arg "Timeline.ckpt_load: window width mismatch (resume must use the original cadence)";
  t.closed_rev <- closed_rev;
  t.nclosed <- nclosed;
  t.lat <- lat;
  t.prev <- prev

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let schema = "rofs-timeline-v1"

let window_json t w =
  let util =
    if w.w_total_units > 0 then float_of_int w.w_used_units /. float_of_int w.w_total_units
    else 0.
  in
  Json.Obj
    [
      ("index", Json.Int w.w_index);
      ("t_start_ms", Json.Float (float_of_int w.w_index *. t.every_ms));
      ("t_end_ms", Json.Float (float_of_int (w.w_index + 1) *. t.every_ms));
      ("io_ops", Json.Int w.w_io_ops);
      ("alloc_ops", Json.Int w.w_alloc_ops);
      ("bytes", Json.Int w.w_bytes);
      ("disk_fulls", Json.Int w.w_disk_fulls);
      ("latency_ms", Sink.hist_json w.w_latency);
      ( "cache",
        Json.Obj
          [
            ("lookups", Json.Int w.w_cache_lookups);
            ("hits", Json.Int w.w_cache_hits);
            ("misses", Json.Int w.w_cache_misses);
            ("writeback_bytes", Json.Int w.w_cache_writeback_bytes);
            ("prefetched_pages", Json.Int w.w_cache_prefetched);
          ] );
      ( "fault",
        Json.Obj
          [
            ("failed_drives", Json.Int w.w_failed_drives);
            ("rebuilding_drives", Json.Int w.w_rebuilding_drives);
            ("rebuild_ios", Json.Int w.w_rebuild_ios);
            ("data_loss", Json.Int w.w_data_loss);
          ] );
      ( "alloc",
        Json.Obj
          [
            ("used_units", Json.Int w.w_used_units);
            ("total_units", Json.Int w.w_total_units);
            ("utilization", Json.Float util);
            ("free_units", Json.Int w.w_free_units);
            ("largest_free_units", Json.Int w.w_largest_free);
            ("free_extents", Json.Int w.w_free_extents);
            ("free_size_units", Sink.hist_json w.w_free_sizes);
          ] );
      ( "churn",
        Json.Obj
          [
            ("user_units", Json.Int w.w_user_units);
            ("moved_units", Json.Int w.w_moved_units);
            ("cleaner_passes", Json.Int w.w_cleaner_passes);
            ("user_units_total", Json.Int w.w_user_units_total);
            ("moved_units_total", Json.Int w.w_moved_units_total);
            ( "write_cost",
              Json.Float
                (if w.w_user_units_total > 0 then
                   float_of_int (w.w_user_units_total + w.w_moved_units_total)
                   /. float_of_int w.w_user_units_total
                 else 1.) );
          ] );
      ( "drives",
        Json.Arr
          (Array.to_list
             (Array.mapi
                (fun d busy ->
                  Json.Obj
                    [
                      ("drive", Json.Int d);
                      ("busy_ms", Json.Float busy);
                      ( "queue_depth",
                        Json.Int
                          (if d < Array.length w.w_queue_depths then w.w_queue_depths.(d)
                           else 0) );
                    ])
                w.w_drive_busy_ms)) );
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("every_ms", Json.Float t.every_ms);
      ("windows", Json.Arr (List.rev_map (window_json t) t.closed_rev));
    ]

(* Flat CSV, one row per window; per-drive columns collapse to
   mean / max so the width is independent of the array shape. *)
let csv_header =
  String.concat ","
    [
      "index";
      "t_start_ms";
      "t_end_ms";
      "io_ops";
      "alloc_ops";
      "bytes";
      "disk_fulls";
      "lat_count";
      "lat_mean_ms";
      "lat_p50_ms";
      "lat_p99_ms";
      "cache_lookups";
      "cache_hits";
      "cache_misses";
      "cache_writeback_bytes";
      "cache_prefetched_pages";
      "failed_drives";
      "rebuilding_drives";
      "rebuild_ios";
      "data_loss";
      "used_units";
      "total_units";
      "utilization";
      "free_units";
      "largest_free_units";
      "free_extents";
      "user_units";
      "moved_units";
      "cleaner_passes";
      "write_cost";
      "busy_ms_mean";
      "busy_ms_max";
      "queue_depth_mean";
      "queue_depth_max";
    ]

let float_mean_max arr =
  let n = Array.length arr in
  if n = 0 then (0., 0.)
  else begin
    let sum = ref 0. and mx = ref arr.(0) in
    Array.iter
      (fun v ->
        sum := !sum +. v;
        if v > !mx then mx := v)
      arr;
    (!sum /. float_of_int n, !mx)
  end

let int_mean_max arr =
  let n = Array.length arr in
  if n = 0 then (0., 0)
  else begin
    let sum = ref 0 and mx = ref arr.(0) in
    Array.iter
      (fun v ->
        sum := !sum + v;
        if v > !mx then mx := v)
      arr;
    (float_of_int !sum /. float_of_int n, !mx)
  end

let to_csv t =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer csv_header;
  Buffer.add_char buffer '\n';
  List.iter
    (fun w ->
      let busy_mean, busy_max = float_mean_max w.w_drive_busy_ms in
      let qd_mean, qd_max = int_mean_max w.w_queue_depths in
      let util =
        if w.w_total_units > 0 then
          float_of_int w.w_used_units /. float_of_int w.w_total_units
        else 0.
      in
      let write_cost =
        if w.w_user_units_total > 0 then
          float_of_int (w.w_user_units_total + w.w_moved_units_total)
          /. float_of_int w.w_user_units_total
        else 1.
      in
      Buffer.add_string buffer
        (Printf.sprintf "%d,%g,%g,%d,%d,%d,%d,%d,%g,%g,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%d,%d,%d,%d,%d,%d,%g,%g,%g,%g,%d\n"
           w.w_index
           (float_of_int w.w_index *. t.every_ms)
           (float_of_int (w.w_index + 1) *. t.every_ms)
           w.w_io_ops w.w_alloc_ops w.w_bytes w.w_disk_fulls
           (Hist.count w.w_latency) (Hist.mean w.w_latency) (Hist.p50 w.w_latency)
           (Hist.p99 w.w_latency) w.w_cache_lookups w.w_cache_hits w.w_cache_misses
           w.w_cache_writeback_bytes w.w_cache_prefetched w.w_failed_drives
           w.w_rebuilding_drives w.w_rebuild_ios w.w_data_loss w.w_used_units
           w.w_total_units util w.w_free_units w.w_largest_free w.w_free_extents
           w.w_user_units w.w_moved_units w.w_cleaner_passes write_cost
           busy_mean busy_max qd_mean qd_max))
    (List.rev t.closed_rev);
  Buffer.contents buffer

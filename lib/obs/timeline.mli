(** Windowed time-series telemetry over absolute simulated time.

    A timeline splits the simulated clock into fixed windows of
    [every_ms]: window [k] covers [k * every_ms, (k+1) * every_ms).
    The engine drives it with two streams:

    {ul
    {- {!record_latency} per completed operation, attributed to the
       window containing the {e completion} timestamp (the synchronous
       fast path records operations at issue time with a completion
       several windows ahead — attribution stays exact);}
    {- {!tick} once per window boundary, carrying the {e cumulative}
       counters and the instantaneous gauges; the closing window's
       per-window counters are the deltas against the previous tick.}}

    Because windows are aligned to absolute time and all per-window
    state is integer counters, exact-merging histograms ({!Hist}) or
    gauges with a documented combination rule, two timelines from
    disjoint shard slices merge {e elementwise per window} into a
    result that is byte-identical however the slices were executed.
    Merge rules: counters and byte deltas sum; histograms
    [Hist.merge]; per-drive arrays concatenate in argument order;
    used/total/free units and free-extent counts sum; [largest_free]
    takes the max; failed/rebuilding drive counts sum.  A timeline
    that closed fewer windows contributes zero deltas and its final
    gauge values for the missing windows.

    Only fully closed windows are exported; the trailing partial
    window is dropped. *)

type sample = {
  s_io_ops : int;  (** cumulative completed I/O operations *)
  s_alloc_ops : int;  (** cumulative allocation operations *)
  s_bytes_moved : int;  (** cumulative bytes moved across all drives *)
  s_disk_fulls : int;
  s_data_loss : int;
  s_rebuild_ios : int;
  s_cache_lookups : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_cache_writeback_bytes : int;
  s_cache_prefetched : int;
  s_drive_busy_ms : float array;  (** cumulative busy time per drive *)
  s_queue_depths : int array;  (** instantaneous dispatch-queue depth per drive *)
  s_failed_drives : int;  (** gauges below: instantaneous at the tick *)
  s_rebuilding_drives : int;
  s_used_units : int;
  s_total_units : int;
  s_free_units : int;
  s_largest_free : int;
  s_free_hist : (int * int) list;
      (** free-space size distribution, [(size_units, count)] ascending *)
  s_user_units : int;
      (** cumulative units allocated on behalf of user writes
          ({!Rofs_alloc.Policy.churn_stats}) *)
  s_moved_units : int;
      (** cumulative units relocated by allocator-internal data
          movement (LFS cleaner; 0 for update-in-place allocators) *)
  s_cleaner_passes : int;  (** cumulative successful cleaner passes *)
}
(** One observation of the engine: cumulative counters since engine
    creation plus instantaneous gauges.  The fields marked cumulative
    are differenced between consecutive ticks; gauge fields are stored
    as sampled. *)

type t

val create : every_ms:float -> baseline:sample -> t
(** A timeline with no closed windows.  [baseline] is the cumulative
    state at attach time (window 0's deltas are taken against it).
    Raises [Invalid_argument] when [every_ms <= 0]. *)

val every_ms : t -> float

val window_count : t -> int
(** Closed windows so far. *)

val record_latency : t -> at:float -> float -> unit
(** Record one operation latency (ms) into the window containing
    simulated time [at]. *)

val tick : t -> sample -> unit
(** Close the next window: its counters are the deltas of [sample]
    against the previous tick's (or the baseline), its gauges are
    [sample]'s.  The engine calls this at every absolute multiple of
    [every_ms]. *)

val merge : t -> t -> t
(** Elementwise per-window merge under the rules documented above.
    Neither argument is mutated; the result is read-only (feeding it to
    {!tick} or {!record_latency} is a programming error).  Raises
    [Invalid_argument] when the window widths differ. *)

val ckpt_save : t -> string
(** Opaque snapshot of all closed windows, the open window's latency
    histograms and the cumulative baseline. *)

val ckpt_load : t -> string -> unit
(** Restore a {!ckpt_save} snapshot in place.  Raises
    [Invalid_argument] when the snapshot's window width differs from
    [t]'s (resume must use the original cadence). *)

val schema : string
(** ["rofs-timeline-v1"]. *)

val to_json : t -> Json.t
(** The timeline as a [{schema; every_ms; windows}] document: one
    object per closed window with counters, a latency histogram
    summary, cache / fault / allocator sub-objects and a per-drive
    array. *)

val to_csv : t -> string
(** Flat CSV, one row per closed window, header first; per-drive
    values collapse to mean / max columns. *)

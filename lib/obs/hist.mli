(** Log-bucketed histogram with fixed, deterministic bucket boundaries.

    HDR-style layout: values are scaled to integer milli-units (a 1/1000
    resolution floor), and each power-of-two octave is split into 32
    linear sub-buckets, giving a worst-case relative error of 1/32
    (~3.1%) at every magnitude.  The boundaries are a pure function of
    the bucket index — no per-instance state — so two histograms built
    anywhere always share the same buckets and {!merge} is plain
    counter addition: associative, commutative, and invariant under how
    a sample stream is partitioned.  That is the property that lets
    per-worker histograms from a {!Rofs_par.Pool} run be folded in fixed
    seed order into a result that is bit-identical at every job count.

    Count, minimum and maximum are exact; quantiles are resolved to the
    lower bound of the bucket holding the requested rank, so every
    quantile is [<=] the exact maximum and quantiles are monotone in the
    requested rank. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample.  Negative and non-finite values clamp to 0;
    values are unit-agnostic (latencies in ms, distances in cylinders —
    anything non-negative with 1/1000 resolution). *)

val add_n : t -> float -> int -> unit
(** [add_n t x k] records [k] copies of [x] in O(1) — one bucket
    update, [sum += x * k].  Bucket counts, [count], [min_value] and
    [max_value] are exactly those of [k] calls to {!add}; [total] sums
    [x *. k] in one step rather than [k] additions, so it can differ
    from the loop in the last float bit.  [k = 0] is a no-op; negative
    [k] raises [Invalid_argument]. *)

val count : t -> int
val is_empty : t -> bool
val total : t -> float
(** Exact sum of the samples (float accumulation order = add order). *)

val mean : t -> float
(** [total / count]; [0.] when empty. *)

val min_value : t -> float option
(** Exact smallest sample; [None] when empty. *)

val max_value : t -> float option
(** Exact largest sample; [None] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [[0, 1]]: the lower bound of the bucket
    containing the sample of rank [ceil (q * count)] (rank clamped to
    [[1, count]]).  [0.] when empty.  Monotone in [q] and always
    [<= max_value]. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float
val p999 : t -> float

val merge : t -> t -> t
(** Fresh histogram holding both sample sets.  Bucket counts, [count],
    [min_value] and [max_value] combine exactly; [total] is summed in
    argument order.  Neither argument is mutated.  Merging with an
    empty histogram copies the other. *)

val copy : t -> t

val ckpt_restore : dst:t -> src:t -> unit
(** Overwrite [dst]'s contents with [src]'s, in place — for
    checkpoint/restore where other structures alias [dst]. *)

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lower, upper_exclusive, count)], ascending. *)

(** Bucket arithmetic, exposed for property tests. *)

val index_of : int -> int
(** Flat bucket index of a non-negative milli-unit value. *)

val bucket_lower : int -> int
(** Inclusive lower bound (milli-units) of bucket [i]. *)

val bucket_count : int
(** Number of buckets (fixed; covers the full non-negative int range). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let rec emit buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f ->
      if Float.is_finite f then begin
        let s = Printf.sprintf "%.12g" f in
        Buffer.add_string buffer s;
        (* "1e+06"-style output is a valid JSON number; bare "1" is too,
           but keep integral floats recognizably float-typed. *)
        if
          String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s
        then Buffer.add_string buffer ".0"
      end
      else Buffer.add_string buffer "null"
  | Str s -> escape buffer s
  | Arr items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          emit buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buffer ',';
          escape buffer k;
          Buffer.add_char buffer ':';
          emit buffer v)
        fields;
      Buffer.add_char buffer '}'

let to_string v =
  let buffer = Buffer.create 256 in
  emit buffer v;
  Buffer.contents buffer

let to_channel oc v = output_string oc (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buffer
      | '\\' -> begin
          if !pos >= n then error "unterminated escape";
          let e = input.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buffer '"'
          | '\\' -> Buffer.add_char buffer '\\'
          | '/' -> Buffer.add_char buffer '/'
          | 'n' -> Buffer.add_char buffer '\n'
          | 't' -> Buffer.add_char buffer '\t'
          | 'r' -> Buffer.add_char buffer '\r'
          | 'b' -> Buffer.add_char buffer '\b'
          | 'f' -> Buffer.add_char buffer '\012'
          | 'u' ->
              if !pos + 4 > n then error "truncated \\u escape";
              let hex = String.sub input !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with Failure _ -> error "bad \\u escape"
              in
              (* Minimal UTF-8 encoding; surrogate pairs are passed
                 through as two 3-byte sequences (WTF-8), which is fine
                 for validation purposes. *)
              if code < 0x80 then Buffer.add_char buffer (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> error "unknown escape");
          go ()
        end
      | c -> begin
          Buffer.add_char buffer c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then begin
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error "bad number"
    end
    else begin
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> ( match float_of_string_opt s with Some f -> Float f | None -> error "bad number")
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> error "expected , or }"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> error "expected , or ]"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Access                                                              *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let keys = function Obj fields -> List.map fst fields | _ -> []
let float_value = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

type t = { header : string list; mutable rows : string list list (* newest first *) }

let create ~header = { header; rows = [] }
let columns t = t.header
let rows t = List.rev t.rows

let add_row t row =
  let width = List.length t.header in
  let actual = List.length row in
  if actual > width then invalid_arg "Table.add_row: more cells than columns";
  let padded = row @ List.init (width - actual) (fun _ -> "") in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter measure all;
  let buffer = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        if i > 0 then Buffer.add_string buffer "  ";
        if i = 0 then begin
          Buffer.add_string buffer cell;
          Buffer.add_string buffer (String.make pad ' ')
        end
        else begin
          Buffer.add_string buffer (String.make pad ' ');
          Buffer.add_string buffer cell
        end)
      row;
    Buffer.add_char buffer '\n'
  in
  emit_row t.header;
  let rule = Array.fold_left (fun acc w -> acc + w) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buffer (String.make rule '-');
  Buffer.add_char buffer '\n';
  List.iter emit_row rows;
  Buffer.contents buffer

let csv_cell cell =
  let needs_quoting = String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell in
  if needs_quoting then begin
    let escaped =
      String.concat "\"\"" (String.split_on_char '"' cell)
    in
    "\"" ^ escaped ^ "\""
  end
  else cell

let to_csv t =
  let row cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (row t.header :: List.rev_map row t.rows) ^ "\n"

let print ?title t =
  (match title with
  | Some s ->
      print_newline ();
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)

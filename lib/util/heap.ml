(* Classic array-backed binary min-heap, stored as two parallel arrays:
   an unboxed float array for the priorities and a plain array for the
   values.  Slot 0 is the root; [size] tracks the live prefix so that
   pops do not shrink the backing store.

   The split layout is what makes the simulator's hot loop allocation
   free: pushing stores a float into a flat float array and a pointer
   into a value array (no (prio, value) entry record), and the
   {!min_prio} / {!take_min} pair pops without building the
   [Some (prio, value)] tuple that {!pop} returns.

   The sift routines compare and swap exactly as the old entry-record
   implementation did — same [<] comparisons in the same order — so the
   order in which equal-priority elements surface is unchanged, which
   the engine's frozen goldens depend on. *)

type 'a t = {
  mutable prios : float array;
  mutable data : 'a array;
  mutable size : int;
}

let create () = { prios = [||]; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* Capacity grows lazily: the first pushed value seeds the fresh value
   array (there is no dummy element), exactly as the old implementation
   filled [Array.make] with the incoming entry. *)
let reserve t value extra =
  let capacity = Array.length t.prios in
  if t.size + extra > capacity then begin
    let fresh_cap = max 16 (max (t.size + extra) (2 * capacity)) in
    let fresh_prios = Array.make fresh_cap 0. in
    let fresh_data = Array.make fresh_cap value in
    Array.blit t.prios 0 fresh_prios 0 t.size;
    Array.blit t.data 0 fresh_data 0 t.size;
    t.prios <- fresh_prios;
    t.data <- fresh_data
  end

let swap t i j =
  let p = t.prios.(i) in
  t.prios.(i) <- t.prios.(j);
  t.prios.(j) <- p;
  let v = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prios.(i) < t.prios.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let size = t.size in
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = if left < size && t.prios.(left) < t.prios.(i) then left else i in
  let smallest =
    if right < size && t.prios.(right) < t.prios.(smallest) then right else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let push t ~prio value =
  reserve t value 1;
  t.prios.(t.size) <- prio;
  t.data.(t.size) <- value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Batched insert for the completion bursts the queued dispatch path
   generates (one event per drive an operation touched).  A small batch
   landing on a large heap sifts each element up — the same work, and
   the same equal-priority order, as pushing one at a time.  A batch
   that dominates the heap (k >= size, e.g. re-seeding after a clear)
   appends everything and rebuilds with one Floyd sift-down pass, O(n)
   instead of O(k log n); the heap interface leaves equal-priority
   order unspecified, and only this path may arrange ties differently
   from sequential pushes. *)
let push_batch t ~prios ~values len =
  if len < 0 || len > Array.length prios || len > Array.length values then
    invalid_arg "Heap.push_batch: bad length";
  if len > 0 then begin
    reserve t values.(0) len;
    if len < t.size then
      for i = 0 to len - 1 do
        push t ~prio:prios.(i) values.(i)
      done
    else begin
      Array.blit prios 0 t.prios t.size len;
      Array.blit values 0 t.data t.size len;
      t.size <- t.size + len;
      for i = ((t.size - 2) / 2) downto 0 do
        sift_down t i
      done
    end
  end

let peek t = if t.size = 0 then None else Some (t.prios.(0), t.data.(0))

(* Non-allocating pop: read {!min_prio}, then {!take_min}. *)
let min_prio t =
  if t.size = 0 then invalid_arg "Heap.min_prio: empty heap";
  t.prios.(0)

let take_min t =
  if t.size = 0 then invalid_arg "Heap.take_min: empty heap";
  let root = t.data.(0) in
  t.size <- t.size - 1;
  t.prios.(0) <- t.prios.(t.size);
  t.data.(0) <- t.data.(t.size);
  if t.size > 0 then sift_down t 0;
  root

let pop t =
  if t.size = 0 then None
  else begin
    let prio = t.prios.(0) in
    let value = take_min t in
    Some (prio, value)
  end

let clear t = t.size <- 0

(* Verbatim-layout snapshot for checkpointing: the live prefix of both
   parallel arrays, in heap order.  Restoring with {!restore} reproduces
   the exact internal array layout — not just the same multiset — so the
   order in which equal-priority elements surface after a resume is
   bit-identical to the uninterrupted run (rebuilding by pushes could
   legally arrange ties differently). *)
let snapshot t = (Array.sub t.prios 0 t.size, Array.sub t.data 0 t.size)

let restore t ~prios ~data =
  if Array.length prios <> Array.length data then
    invalid_arg "Heap.restore: prios and data lengths differ";
  t.prios <- prios;
  t.data <- data;
  t.size <- Array.length data

let to_sorted_list t =
  let copy = { prios = Array.sub t.prios 0 t.size; data = Array.sub t.data 0 t.size; size = t.size } in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some pair -> drain (pair :: acc)
  in
  drain []

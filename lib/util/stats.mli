(** Running statistics and interval series.

    {!t} is a Welford accumulator for mean / variance / extrema.
    {!Series} accumulates per-interval throughput samples and implements
    the paper's stabilization rule: the simulation is considered stable
    when three consecutive 10-second-interval throughput figures agree to
    within 0.1 (percentage points). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the samples; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float option
(** Smallest sample; [None] when empty (so merging empty partitions can
    never poison extrema with [nan]). *)

val max_value : t -> float option
(** Largest sample; [None] when empty. *)

val total : t -> float

val copy : t -> t
(** Independent snapshot of the accumulator. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen [a]'s
    samples followed by [b]'s, per Chan et al.'s parallel combination of
    Welford states.  Count, sum, minimum and maximum are exact; mean and
    variance agree with a single-pass {!add} stream algebraically but
    only to floating-point re-association (within ~1e-9 relative for
    well-scaled data).  Merging with an empty accumulator is the
    identity.  Neither argument is mutated. *)

module Series : sig
  type nonrec t

  val create : window:int -> tolerance:float -> t
  (** [create ~window ~tolerance] — stable once [window] consecutive
      samples all lie within [tolerance] of each other. *)

  val add : t -> float -> unit
  val last : t -> float option
  val samples : t -> float list
  (** All samples, oldest first. *)

  val is_stable : t -> bool
  (** Whether the last [window] samples span at most [tolerance]. *)
end

(** Minimal aligned text tables for experiment reports.

    The bench harness prints each reproduced paper table/figure as an
    ASCII table; this keeps that rendering in one place. *)

type t

val create : header:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val columns : t -> string list
(** The column headers, in order. *)

val rows : t -> string list list
(** The rows in insertion order (each padded to the header width). *)

val render : t -> string
(** The table as a string with a title row, a separator and aligned
    columns (left-aligned first column, right-aligned others). *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes [t] (preceded by [title] underlined, when
    given) to stdout. *)

val to_csv : t -> string
(** RFC-4180-ish CSV: header row first, cells quoted when they contain
    commas, quotes or newlines. *)

(* xoshiro256** 1.0 (Blackman & Vigna).  State is four non-zero 64-bit
   words; seeding runs the 64-bit splitmix generator over the user seed so
   that small seeds still yield well-mixed states. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let assign ~dst ~src =
  dst.s0 <- src.s0;
  dst.s1 <- src.s1;
  dst.s2 <- src.s2;
  dst.s3 <- src.s3

let derive_seed ~seed ~stream =
  (* Mix the pair through splitmix64 so that (seed, 0), (seed, 1), ...
     land far apart even for adjacent seeds; the result is kept
     positive so it can be fed back into [create] or stored in configs
     that print seeds in decimal. *)
  let state = ref (Int64.of_int seed) in
  let a = splitmix64 state in
  let state = ref (Int64.logxor a (Int64.of_int stream)) in
  let b = splitmix64 state in
  Int64.to_int (Int64.shift_right_logical b 1)

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed the child from two parent outputs; mixing through splitmix64
     decorrelates the child stream from subsequent parent outputs. *)
  let state = ref (Int64.logxor (bits64 t) (rotl (bits64 t) 23)) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let float t =
  (* 53 high bits give a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t n =
  assert (n > 0);
  if n = 1 then 0
  else begin
    (* Rejection sampling over the low bits to avoid modulo bias. *)
    let mask =
      let rec widen m = if m >= n - 1 then m else widen ((m lsl 1) lor 1) in
      widen 1
    in
    let rec draw () =
      let v = Int64.to_int (Int64.logand (bits64 t) (Int64.of_int mask)) in
      if v < n then v else draw ()
    in
    draw ()
  end

let int_in t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

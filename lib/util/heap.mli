(** Binary min-heap keyed on a float priority.

    This is the event heap of the simulation model (Section 2.2 of the
    paper): events are kept "in a heap, sorted by their scheduled time".
    Elements with equal priority are returned in unspecified order. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> prio:float -> 'a -> unit
(** Insert an element with the given priority. *)

val push_batch : 'a t -> prios:float array -> values:'a array -> int -> unit
(** [push_batch t ~prios ~values len] inserts the first [len]
    ([prios.(i)], [values.(i)]) pairs, observationally equal to [len]
    individual {!push}es (equal-priority order may differ, which the
    interface leaves unspecified anyway).  Batches that dominate the
    heap are bulk-appended and re-heapified in O(n) instead of
    O(len log n); small batches cost the same as individual pushes but
    avoid per-call closure setup on the engine's completion path.
    @raise Invalid_argument if [len] exceeds either array's length. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, or [None] when
    empty. *)

val min_prio : 'a t -> float
(** Priority of the minimum element, without removing or boxing it.
    @raise Invalid_argument on an empty heap. *)

val take_min : 'a t -> 'a
(** Remove and return the minimum-priority element's value.  Paired
    with {!min_prio} this is the allocation-free equivalent of {!pop}.
    @raise Invalid_argument on an empty heap. *)

val peek : 'a t -> (float * 'a) option
(** The minimum-priority element without removing it. *)

val clear : 'a t -> unit

val snapshot : 'a t -> float array * 'a array
(** The live (priority, value) prefix in internal heap-array order.
    Feeding both arrays back through {!restore} reproduces the exact
    array layout, so the surfacing order of equal-priority elements —
    unspecified by this interface but pinned by the engine's frozen
    goldens — survives a checkpoint/restore round trip bit for bit. *)

val restore : 'a t -> prios:float array -> data:'a array -> unit
(** Overwrite the heap's contents with a {!snapshot}'s arrays, taking
    ownership of both.
    @raise Invalid_argument if the arrays' lengths differ. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive drain, in priority order; intended for tests and
    debugging (costs O(n log n)). *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations, per Welford *)
  mutable minimum : float;
  mutable maximum : float;
  mutable sum : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; minimum = nan; maximum = nan; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.minimum <- x;
    t.maximum <- x
  end
  else begin
    if x < t.minimum then t.minimum <- x;
    if x > t.maximum then t.maximum <- x
  end

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then None else Some t.minimum
let max_value t = if t.n = 0 then None else Some t.maximum
let total t = t.sum
let copy t = { n = t.n; mean = t.mean; m2 = t.m2; minimum = t.minimum; maximum = t.maximum; sum = t.sum }

(* Chan et al. pairwise combination of two Welford accumulators.  Count,
   sum and extrema combine exactly; mean and m2 agree with a single-pass
   [add] stream algebraically but not bit-for-bit (the update order
   differs), so callers that need bit-stable aggregates must fold [add]
   in a fixed sample order instead. *)
let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = na +. nb in
    let delta = b.mean -. a.mean in
    {
      n = a.n + b.n;
      mean = a.mean +. (delta *. (nb /. n));
      m2 = a.m2 +. b.m2 +. (delta *. delta *. (na *. nb /. n));
      minimum = Float.min a.minimum b.minimum;
      maximum = Float.max a.maximum b.maximum;
      sum = a.sum +. b.sum;
    }
  end

module Series = struct
  type t = {
    window : int;
    tolerance : float;
    mutable samples : float list; (* newest first *)
  }

  let create ~window ~tolerance =
    assert (window >= 2 && tolerance >= 0.);
    { window; tolerance; samples = [] }

  let add t x = t.samples <- x :: t.samples

  let last t = match t.samples with [] -> None | x :: _ -> Some x

  let samples t = List.rev t.samples

  let is_stable t =
    let rec take n xs =
      match (n, xs) with
      | 0, _ -> Some []
      | _, [] -> None
      | n, x :: rest -> Option.map (fun tail -> x :: tail) (take (n - 1) rest)
    in
    match take t.window t.samples with
    | None -> false
    | Some recent ->
        let lo = List.fold_left Float.min infinity recent in
        let hi = List.fold_left Float.max neg_infinity recent in
        hi -. lo <= t.tolerance
end

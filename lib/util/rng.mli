(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulator flows through a value of type
    {!t} so that every experiment is reproducible from its seed.  The
    generator is xoshiro256**, which is fast, has a 256-bit state and passes
    the usual statistical batteries; determinism across platforms matters
    more here than cryptographic quality. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator whose stream is a pure function of
    [seed].  Two generators created with the same seed produce identical
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val assign : dst:t -> src:t -> unit
(** [assign ~dst ~src] overwrites [dst]'s state with [src]'s in place,
    so every alias of [dst] continues the stream from [src]'s position.
    This is the checkpoint-restore primitive: engine subsystems hold
    references to their generators, and restoring must not replace the
    record they share. *)

val derive_seed : seed:int -> stream:int -> int
(** [derive_seed ~seed ~stream] maps a (seed, stream-index) pair to a
    fresh positive seed, a pure function of both arguments.  Used by the
    sharded engine to give each shard its own decorrelated stream while
    the whole family remains a function of the run's single seed. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child are (statistically) independent; used to give each
    file type its own stream so adding one file type does not perturb the
    draws seen by another. *)

val bits64 : t -> int64
(** Next raw 64-bit output word. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin flip. *)
